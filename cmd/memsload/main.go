// Command memsload is the load generator for memserve: it drives N
// concurrent PLAY clients — optionally including deliberately slow and
// fully stalled readers — and reports achieved throughput, admission
// outcomes, stall evictions observed, and admission-latency quantiles.
// It is the other half of the e2e smoke test: memserve must evict the
// stalled readers and return their slots, and memsload verifies the
// server drained back to admitted=0 afterwards.
//
// Usage:
//
//	memsload -addr 127.0.0.1:9090 -clients 16 -slow 2 -stall 2 \
//	         -rate 100KB -duration 5s
//	memsload -addr 127.0.0.1:9090 -stat              # one STAT round-trip
//	memsload -addr 127.0.0.1:9090 -metrics           # one METRICS round-trip
//	memsload -addr 127.0.0.1:9090 -drained 5s        # poll until admitted=0
//
// Against the HTTP control plane (memserve -http):
//
//	memsload -http-metrics http://127.0.0.1:9091     # probe: fetch /status
//	         # and /metrics, print flattened key=value lines, exit 1 on
//	         # unreachable endpoint or invalid JSON
//	memsload -addr 127.0.0.1:9090 -clients 8 -stall 2 -duration 3s \
//	         -verify-http http://127.0.0.1:9091
//	         # run the load AND cross-check the server's counter deltas
//	         # (/metrics before vs after) against the client-side tallies:
//	         # every admitted stream must land in exactly one of
//	         # completed/evicted/aborted, with no reaped cross-counting
//	memsload -addr 127.0.0.1:9090 -http-metrics http://127.0.0.1:9091 \
//	         -sweep 100,500,1000 -duration 3s -sweep-json sweep.json
//	         # population scaling sweep: run each step's client count,
//	         # report per-step admitted/evicted/aborted and pacing-lag
//	         # quantiles from the server's /metrics histogram-bucket
//	         # deltas (per-step, not cumulative), optionally as JSON
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"memstream/internal/metrics"
	"memstream/internal/sim"
	"memstream/internal/units"
)

type config struct {
	addr     string
	clients  int
	slow     int // of clients, how many read deliberately slowly
	stall    int // of clients, how many stop reading after the response line
	rate     string
	duration time.Duration
}

type clientKind int

const (
	kindNormal clientKind = iota
	kindSlow
	kindStalled
)

type clientResult struct {
	admitted  bool
	busy      bool
	errored   bool
	completed bool // server delivered its full -limit and closed cleanly
	evicted   bool // stalled client observed the server closing on it
	bytes     int64
	latency   time.Duration // connect → first response line
}

type report struct {
	Clients   int
	Admitted  int
	Busy      int
	Errors    int
	Completed int
	Evicted   int
	Bytes     int64
	Wall      time.Duration
	Latency   *sim.Reservoir // admission latency, seconds
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "memserve address")
	clients := flag.Int("clients", 16, "concurrent clients")
	slow := flag.Int("slow", 0, "of -clients, how many read slowly")
	stall := flag.Int("stall", 0, "of -clients, how many stop reading after the response")
	rate := flag.String("rate", "100KB", "per-client PLAY rate")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	stat := flag.Bool("stat", false, "send one STAT, print the response, exit")
	metricsLine := flag.Bool("metrics", false, "send one METRICS, print the response, exit")
	drained := flag.Duration("drained", 0, "poll STAT until admitted=0 or this timeout; exit 1 on timeout")
	httpMetrics := flag.String("http-metrics", "", "probe the HTTP control plane at this base URL: fetch /status and /metrics, print flattened key=value lines, exit")
	verifyHTTP := flag.String("verify-http", "", "with a load run: fetch /metrics before and after and verify server counter deltas against client-side tallies")
	sweep := flag.String("sweep", "", "comma-separated stream populations: run each step as a full client cohort and report per-step counter deltas and lag quantiles (requires -http-metrics as the control-plane base URL)")
	sweepJSON := flag.String("sweep-json", "", "with -sweep: also write the per-step results as JSON to this path")
	flag.Parse()

	switch {
	case *stat:
		oneShot(*addr, "STAT")
	case *metricsLine:
		oneShot(*addr, "METRICS")
	case *sweep != "":
		if *httpMetrics == "" {
			log.Fatalf("memsload: -sweep needs -http-metrics <base URL> to collect per-step counter and histogram deltas")
		}
		cfg := config{addr: *addr, rate: *rate, duration: *duration}
		if err := runSweep(os.Stdout, *httpMetrics, cfg, *sweep, *sweepJSON); err != nil {
			log.Fatalf("memsload: sweep: %v", err)
		}
	case *httpMetrics != "":
		if err := probeHTTP(os.Stdout, *httpMetrics); err != nil {
			log.Fatalf("memsload: http probe: %v", err)
		}
	case *drained > 0:
		if err := waitDrained(*addr, *drained); err != nil {
			log.Fatalf("memsload: %v", err)
		}
		fmt.Println("drained: admitted=0")
	default:
		cfg := config{addr: *addr, clients: *clients, slow: *slow, stall: *stall,
			rate: *rate, duration: *duration}
		var before *metrics.Document
		if *verifyHTTP != "" {
			doc, err := fetchMetrics(*verifyHTTP)
			if err != nil {
				log.Fatalf("memsload: verify baseline: %v", err)
			}
			before = doc
		}
		rep, err := run(cfg)
		if err != nil {
			log.Fatalf("memsload: %v", err)
		}
		fmt.Print(rep.String())
		if rep.Errors > 0 {
			os.Exit(1)
		}
		if *verifyHTTP != "" {
			if err := verifyAgainstHTTP(*verifyHTTP, before, rep); err != nil {
				log.Fatalf("memsload: counter verification FAILED: %v", err)
			}
			fmt.Println("verify-http: server counter deltas match client tallies")
		}
	}
}

// fetchJSON GETs base+path and decodes the JSON body.
func fetchJSON(base, path string, into any) error {
	url := strings.TrimRight(base, "/") + path
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("GET %s: invalid JSON: %v", url, err)
	}
	return nil
}

func fetchMetrics(base string) (*metrics.Document, error) {
	var doc metrics.Document
	if err := fetchJSON(base, "/metrics", &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// probeHTTP is the -http-metrics mode: one /status and one /metrics
// round-trip, rendered as sorted key=value lines (grep-friendly for the
// CI smoke), failing on unreachable endpoints or invalid JSON.
func probeHTTP(w io.Writer, base string) error {
	var st metrics.Status
	if err := fetchJSON(base, "/status", &st); err != nil {
		return err
	}
	fmt.Fprintf(w, "status.state=%s status.admitted=%d status.capacity=%d status.active_streams=%d status.conns=%d\n",
		st.State, st.Admitted, st.Capacity, st.ActiveStreams, st.Conns)
	doc, err := fetchMetrics(base)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(doc.Counters))
	for k := range doc.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "counters.%s=%d\n", k, doc.Counters[k])
	}
	fmt.Fprintf(w, "lag.count=%d\n", doc.Lag.Count)
	qkeys := make([]string, 0, len(doc.Lag.Quantiles))
	for k := range doc.Lag.Quantiles {
		qkeys = append(qkeys, k)
	}
	sort.Strings(qkeys)
	for _, k := range qkeys {
		fmt.Fprintf(w, "lag.%s=%.3f\n", k, doc.Lag.Quantiles[k])
	}
	for _, tier := range doc.Tiers {
		fmt.Fprintf(w, "tier.%s.utilization=%.4f\n", tier.Name, tier.Utilization)
	}
	fmt.Fprintf(w, "streams.live=%d\n", len(doc.Streams))
	return nil
}

// verifyAgainstHTTP waits for the server to settle (no live streams),
// fetches the post-load /metrics, and checks the counter deltas against
// the client-side tallies. The identities assume outcomes are
// unambiguous: stalled clients require the server to run with -limit 0
// (a finite limit can fit entirely in kernel socket buffers, letting
// the server complete a stream its client believes was stalled). The
// smoke invokes it exactly that way.
func verifyAgainstHTTP(base string, before *metrics.Document, rep *report) error {
	if err := waitSettled(base, 10*time.Second); err != nil {
		return err
	}
	after, err := fetchMetrics(base)
	if err != nil {
		return err
	}
	if problems := verifyDeltas(before.Counters, after.Counters, rep); len(problems) > 0 {
		return fmt.Errorf("%s", strings.Join(problems, "; "))
	}
	return nil
}

// verifyDeltas cross-checks the server's counter deltas over one load
// run against the load generator's own tallies:
//
//   - admitted_total, admission_busy, and completed match exactly;
//   - reaped stays flat — no disconnect may be miscounted as a
//     slowloris reap (the clients always send a full request line);
//   - evicted is at least the client-observed stall kills. It may
//     legitimately exceed them: an evicted reader that is still
//     draining kernel-buffered data when its run window ends never
//     sees the server's close, so the client side under-observes;
//   - conservation: every admitted stream ends exactly one way, so
//     evicted + aborted must equal admitted − completed. Combined with
//     the floor above, this pins any cross-counting between the
//     eviction and abort buckets.
func verifyDeltas(before, after map[string]uint64, rep *report) []string {
	delta := func(k string) uint64 { return after[k] - before[k] }
	var problems []string
	check := func(name string, got, want uint64) {
		if got != want {
			problems = append(problems, fmt.Sprintf("%s: server delta %d, client tally %d", name, got, want))
		}
	}
	check("admitted_total", delta("admitted_total"), uint64(rep.Admitted))
	check("admission_busy", delta("admission_busy"), uint64(rep.Busy))
	check("completed", delta("completed"), uint64(rep.Completed))
	check("reaped", delta("reaped"), 0)
	if got, min := delta("evicted"), uint64(rep.Evicted); got < min {
		problems = append(problems, fmt.Sprintf("evicted: server delta %d < %d client-observed evictions", got, min))
	}
	if got, want := delta("evicted")+delta("aborted"), uint64(rep.Admitted-rep.Completed); got != want {
		problems = append(problems, fmt.Sprintf("conservation: evicted+aborted delta %d != admitted-completed %d", got, want))
	}
	if got, min := delta("bytes_out"), uint64(rep.Bytes); got < min {
		problems = append(problems, fmt.Sprintf("bytes_out: server delta %d < client bytes read %d", got, min))
	}
	return problems
}

// waitSettled polls /status until the server reports no live streams and
// no held admission slots — the boundary between two measurement windows.
func waitSettled(base string, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		var st metrics.Status
		if err := fetchJSON(base, "/status", &st); err != nil {
			return err
		}
		if st.ActiveStreams == 0 && st.Admitted == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server did not settle: %d streams / %d admitted still live", st.ActiveStreams, st.Admitted)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// sweepStep is one population step of a -sweep run: the server-side
// counter deltas over exactly this step's window plus the pacing-lag
// quantiles recomputed from the /metrics histogram-bucket deltas — the
// server's cumulative quantiles would let earlier (smaller, faster)
// steps dilute later ones, so each step subtracts its own baseline.
type sweepStep struct {
	Streams    int     `json:"streams"`
	Admitted   uint64  `json:"admitted"`
	Busy       uint64  `json:"busy"`
	Errors     int     `json:"errors"`
	Completed  uint64  `json:"completed"`
	Evicted    uint64  `json:"evicted"`
	Aborted    uint64  `json:"aborted"`
	BytesOut   uint64  `json:"bytes_out"`
	WheelFires uint64  `json:"wheel_fires"`
	LagSamples uint64  `json:"lag_samples"`
	LagP50MS   float64 `json:"lag_p50_ms"`
	LagP95MS   float64 `json:"lag_p95_ms"`
	LagP99MS   float64 `json:"lag_p99_ms"`
	WallMS     float64 `json:"wall_ms"`
}

// sweepReport is the -sweep-json document.
type sweepReport struct {
	Schema     string      `json:"schema"` // "memsload-sweep/v1"
	Rate       string      `json:"rate"`
	DurationMS float64     `json:"duration_ms"`
	Steps      []sweepStep `json:"steps"`
}

// runSweep is the -sweep mode: one full client cohort per population
// step, bracketed by /metrics fetches so every reported figure is this
// step's delta. Between steps it waits for the server to settle back to
// zero live streams, so populations never overlap. Client-side errors
// (e.g. dial failures at fd-exhausting populations) are recorded in the
// step rather than aborting the sweep — a saturated step is a result.
func runSweep(w io.Writer, base string, cfg config, list, jsonPath string) error {
	pops, err := parsePopulations(list)
	if err != nil {
		return err
	}
	out := sweepReport{Schema: "memsload-sweep/v1", Rate: cfg.rate, DurationMS: float64(cfg.duration) / 1e6}
	for _, n := range pops {
		before, err := fetchMetrics(base)
		if err != nil {
			return err
		}
		stepCfg := cfg
		stepCfg.clients = n
		rep, err := run(stepCfg)
		if err != nil {
			return fmt.Errorf("streams=%d: %v", n, err)
		}
		if err := waitSettled(base, cfg.duration+30*time.Second); err != nil {
			return fmt.Errorf("streams=%d: %v", n, err)
		}
		after, err := fetchMetrics(base)
		if err != nil {
			return err
		}
		step := buildSweepStep(n, rep, before, after)
		fmt.Fprintf(w, "sweep streams=%d: admitted=%d busy=%d errors=%d completed=%d evicted=%d aborted=%d bytes_out=%d lag_samples=%d lag_p50_ms=%.3f lag_p95_ms=%.3f lag_p99_ms=%.3f wall_ms=%.0f\n",
			step.Streams, step.Admitted, step.Busy, step.Errors, step.Completed,
			step.Evicted, step.Aborted, step.BytesOut, step.LagSamples,
			step.LagP50MS, step.LagP95MS, step.LagP99MS, step.WallMS)
		out.Steps = append(out.Steps, step)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// buildSweepStep folds one step's client report and its bracketing
// /metrics documents into the per-step delta record.
func buildSweepStep(n int, rep *report, before, after *metrics.Document) sweepStep {
	delta := func(k string) uint64 { return after.Counters[k] - before.Counters[k] }
	return sweepStep{
		Streams:    n,
		Admitted:   delta("admitted_total"),
		Busy:       delta("admission_busy"),
		Errors:     rep.Errors,
		Completed:  delta("completed"),
		Evicted:    delta("evicted"),
		Aborted:    delta("aborted"),
		BytesOut:   delta("bytes_out"),
		WheelFires: delta("wheel_fires"),
		LagSamples: after.Lag.Count - before.Lag.Count,
		LagP50MS:   lagDeltaQuantile(before.Lag, after.Lag, 0.50),
		LagP95MS:   lagDeltaQuantile(before.Lag, after.Lag, 0.95),
		LagP99MS:   lagDeltaQuantile(before.Lag, after.Lag, 0.99),
		WallMS:     float64(rep.Wall) / 1e6,
	}
}

// lagDeltaQuantile estimates the q-quantile (ms) of the lag samples
// recorded between two /metrics documents by subtracting the earlier
// histogram's per-bucket counts from the later one's. Bucket-resolution
// like the server's own quantiles, reporting the bucket's upper bound;
// 0 when the window recorded no samples. A rank landing in the overflow
// bucket reports the histogram ceiling — still a finite, JSON-safe
// number that reads as "beyond the instrumented range".
func lagDeltaQuantile(before, after metrics.HistogramJSON, q float64) float64 {
	prev := make(map[float64]uint64, len(before.Buckets))
	for _, b := range before.Buckets {
		prev[b.LeMS] = b.Count
	}
	type bucket struct {
		le    float64
		count uint64
	}
	var (
		deltas []bucket
		total  uint64
	)
	for _, b := range after.Buckets {
		if d := b.Count - prev[b.LeMS]; d > 0 {
			deltas = append(deltas, bucket{b.LeMS, d})
			total += d
		}
	}
	total += after.Overflow - before.Overflow
	if total == 0 {
		return 0
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].le < deltas[j].le })
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range deltas {
		cum += b.count
		if cum >= rank {
			return b.le
		}
	}
	return metrics.BucketBound(metrics.NumBuckets-2) * 1e3
}

// parsePopulations parses the -sweep list: positive integers, commas.
func parsePopulations(list string) ([]int, error) {
	var pops []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad population %q (want comma-separated positive integers)", f)
		}
		pops = append(pops, n)
	}
	if len(pops) == 0 {
		return nil, fmt.Errorf("no populations in %q", list)
	}
	return pops, nil
}

func oneShot(addr, cmd string) {
	line, err := query(addr, cmd, 5*time.Second)
	if err != nil {
		log.Fatalf("memsload: %s: %v", cmd, err)
	}
	fmt.Println(line)
}

// run drives the configured client mix and aggregates their outcomes.
func run(cfg config) (*report, error) {
	if cfg.clients <= 0 {
		return nil, fmt.Errorf("need at least one client")
	}
	if cfg.slow+cfg.stall > cfg.clients {
		return nil, fmt.Errorf("slow (%d) + stalled (%d) exceed -clients %d", cfg.slow, cfg.stall, cfg.clients)
	}
	if _, err := units.ParseRate(cfg.rate); err != nil {
		return nil, err
	}
	results := make([]clientResult, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.clients; i++ {
		kind := kindNormal
		switch {
		case i < cfg.stall:
			kind = kindStalled
		case i < cfg.stall+cfg.slow:
			kind = kindSlow
		}
		wg.Add(1)
		go func(i int, kind clientKind) {
			defer wg.Done()
			results[i] = runClient(cfg, kind)
		}(i, kind)
	}
	wg.Wait()
	rep := &report{
		Clients: cfg.clients,
		Wall:    time.Since(start),
		Latency: sim.NewReservoir(4096, 1),
	}
	for _, r := range results {
		switch {
		case r.errored:
			rep.Errors++
		case r.busy:
			rep.Busy++
		case r.admitted:
			rep.Admitted++
		}
		if r.admitted {
			rep.Latency.Observe(r.latency.Seconds())
		}
		if r.completed {
			rep.Completed++
		}
		if r.evicted {
			rep.Evicted++
		}
		rep.Bytes += r.bytes
	}
	return rep, nil
}

// runClient runs one PLAY exchange in the given behavioral class.
func runClient(cfg config, kind clientKind) (res clientResult) {
	conn, err := net.DialTimeout("tcp", cfg.addr, 5*time.Second)
	if err != nil {
		res.errored = true
		return res
	}
	defer conn.Close()
	// Hard backstop so no client outlives the run by more than a grace
	// period, whatever the server does.
	conn.SetDeadline(time.Now().Add(cfg.duration + 10*time.Second))

	t0 := time.Now()
	if _, err := fmt.Fprintf(conn, "PLAY %s\n", cfg.rate); err != nil {
		res.errored = true
		return res
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		res.errored = true
		return res
	}
	res.latency = time.Since(t0)
	switch {
	case strings.HasPrefix(line, "BUSY"):
		res.busy = true
		return res
	case strings.HasPrefix(line, "OK streaming"):
		res.admitted = true
	default:
		res.errored = true
		return res
	}

	end := time.Now().Add(cfg.duration)
	switch kind {
	case kindNormal:
		res.bytes, res.completed = drainUntil(r, conn, end, 0)
	case kindSlow:
		// A slow reader: small reads with pauses. It exerts back-pressure
		// but never stalls past the server's write deadline.
		res.bytes, res.completed = drainUntil(r, conn, end, 20*time.Millisecond)
	case kindStalled:
		// Stop reading entirely: the server's write deadline must evict
		// us. After the stall window, a drain read tells us whether the
		// server closed the connection (eviction observed) or kept
		// pumping data (it failed to evict).
		time.Sleep(cfg.duration)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			res.bytes += int64(n)
			if err != nil {
				isTimeout := false
				if netErr, ok := err.(net.Error); ok {
					isTimeout = netErr.Timeout()
				}
				res.evicted = !isTimeout // closed/reset by the server
				return res
			}
		}
	}
	return res
}

// drainUntil reads the stream until the server closes it, the deadline
// passes, or an error occurs; pause > 0 inserts a sleep between reads.
// completed reports a clean server-side close (full -limit delivered).
func drainUntil(r *bufio.Reader, conn net.Conn, end time.Time, pause time.Duration) (int64, bool) {
	var total int64
	buf := make([]byte, 32<<10)
	if pause > 0 {
		buf = buf[:1<<10] // small reads exaggerate slowness
	}
	for time.Now().Before(end) {
		conn.SetReadDeadline(time.Now().Add(time.Until(end) + time.Second))
		n, err := r.Read(buf)
		total += int64(n)
		if err != nil {
			return total, err == io.EOF
		}
		if pause > 0 {
			time.Sleep(pause)
		}
	}
	return total, false
}

// query performs one command round-trip.
func query(addr, cmd string, timeout time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// waitDrained polls STAT until the server reports admitted=0 — the
// zero-leaked-slots assertion the smoke test runs after a load.
func waitDrained(addr string, within time.Duration) error {
	deadline := time.Now().Add(within)
	var last string
	for time.Now().Before(deadline) {
		line, err := query(addr, "STAT", 2*time.Second)
		if err == nil {
			last = line
			if strings.HasPrefix(line, "OK admitted=0 ") {
				return nil
			}
		} else {
			last = err.Error()
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server not drained within %v (last: %s)", within, last)
}

// String renders the human report.
func (r *report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memsload: %d clients, %v wall\n", r.Clients, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "  admitted=%d busy=%d errors=%d completed=%d stall_evictions=%d\n",
		r.Admitted, r.Busy, r.Errors, r.Completed, r.Evicted)
	rate := units.RateOf(units.Bytes(r.Bytes), r.Wall)
	fmt.Fprintf(&b, "  bytes_in=%v throughput=%v\n", units.Bytes(r.Bytes), rate)
	p50, ok := r.Latency.Quantile(0.50)
	if ok {
		p95, _ := r.Latency.Quantile(0.95)
		p99, _ := r.Latency.Quantile(0.99)
		fmt.Fprintf(&b, "  admission_latency_ms: p50=%.2f p95=%.2f p99=%.2f\n",
			p50*1e3, p95*1e3, p99*1e3)
	} else {
		fmt.Fprintf(&b, "  admission_latency_ms: no admissions\n")
	}
	return b.String()
}
