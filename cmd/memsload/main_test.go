package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/metrics"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/serve"
	"memstream/internal/units"
)

// startServer runs a hardened serve.Server on a loopback port with fast
// deadlines, returning its address and the server for slot inspection.
func startServer(t *testing.T, limit units.Bytes) (string, *serve.Server) {
	t.Helper()
	return startServerMode(t, limit, serve.PacingGoroutine)
}

func startServerMode(t *testing.T, limit units.Bytes, pacing serve.PacingMode) (string, *serve.Server) {
	t.Helper()
	p := disk.FutureDisk()
	s, err := serve.New(serve.Config{
		Admission: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()},
			DRAMCap: 1 * units.GB,
		},
		DefaultRate:  100 * units.KBPS,
		Limit:        limit,
		ReadTimeout:  time.Second,
		WriteTimeout: 100 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		Quantum:      5 * time.Millisecond,
		Pacing:       pacing,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not drain")
		}
	})
	return ln.Addr().String(), s
}

// The full loop: a mixed client population (normal + slow + stalled)
// runs against a live server; normal and slow clients complete, stalled
// clients are evicted, and the server ends with zero leaked slots.
func TestLoadAgainstLiveServer(t *testing.T) {
	addr, s := startServer(t, 20*units.KB) // ~40ms per stream at 100KB/s with 5ms quanta
	rep, err := run(config{
		addr:     addr,
		clients:  6,
		slow:     1,
		stall:    2,
		rate:     "100KB",
		duration: 800 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("Errors = %d, want 0", rep.Errors)
	}
	if rep.Admitted != 6 {
		t.Errorf("Admitted = %d, want 6 (1GB DRAM fits all)", rep.Admitted)
	}
	// The 4 reading clients (3 normal + 1 slow) receive the full limit.
	if rep.Completed < 4 {
		t.Errorf("Completed = %d, want ≥ 4", rep.Completed)
	}
	// Both stalled clients observe the server closing on them.
	if rep.Evicted != 2 {
		t.Errorf("stall evictions = %d, want 2", rep.Evicted)
	}
	if rep.Bytes < int64(4*20*units.KB) {
		t.Errorf("Bytes = %d, want ≥ %d", rep.Bytes, int64(4*20*units.KB))
	}
	if _, ok := rep.Latency.Quantile(0.5); !ok {
		t.Error("no admission-latency samples recorded")
	}
	// Zero leaked slots after the load: the waitDrained probe the smoke
	// test uses must succeed promptly.
	if err := waitDrained(addr, 3*time.Second); err != nil {
		t.Errorf("server did not drain after load: %v", err)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after load, want 0", got)
	}
}

func TestQueryStatAndMetrics(t *testing.T) {
	addr, _ := startServer(t, 1*units.KB)
	line, err := query(addr, "STAT", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK admitted=0 capacity=") {
		t.Errorf("STAT = %q", line)
	}
	line, err = query(addr, "METRICS", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK ") || !strings.Contains(line, "evicted=") {
		t.Errorf("METRICS = %q", line)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := run(config{clients: 0}); err == nil {
		t.Error("clients=0 accepted")
	}
	if _, err := run(config{clients: 2, slow: 2, stall: 1}); err == nil {
		t.Error("slow+stall > clients accepted")
	}
	if _, err := run(config{clients: 1, rate: "fast"}); err == nil {
		t.Error("bad rate accepted")
	}
}

// The -http-metrics probe against a live control plane: flattened
// key=value output with the counter and status keys the smoke greps for.
func TestProbeHTTP(t *testing.T) {
	_, s := startServer(t, 1*units.KB)
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	var buf bytes.Buffer
	if err := probeHTTP(&buf, ts.URL+"/"); err != nil { // trailing slash is tolerated
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{
		"status.state=serving", "status.admitted=0",
		"counters.admitted_total=0", "counters.reaped=0", "counters.aborted=0",
		"lag.count=0", "tier.dram.utilization=", "tier.disk.utilization=", "streams.live=0",
	} {
		if !strings.Contains(out, key) {
			t.Errorf("probe output missing %q:\n%s", key, out)
		}
	}
	// No samples yet: quantile keys must be absent, matching the METRICS
	// line's omission semantics.
	if strings.Contains(out, "lag.p95_ms=") {
		t.Errorf("probe rendered quantiles with zero samples:\n%s", out)
	}

	if err := probeHTTP(io.Discard, "http://127.0.0.1:1"); err == nil {
		t.Error("probe against dead endpoint succeeded")
	}
}

func TestVerifyDeltas(t *testing.T) {
	before := map[string]uint64{
		"admitted_total": 3, "admission_busy": 1, "completed": 2,
		"evicted": 1, "aborted": 0, "reaped": 5, "bytes_out": 1000,
	}
	after := map[string]uint64{
		"admitted_total": 9, "admission_busy": 3, "completed": 5,
		"evicted": 3, "aborted": 1, "reaped": 5, "bytes_out": 90000,
	}
	rep := &report{Admitted: 6, Busy: 2, Completed: 3, Evicted: 2, Bytes: 80000}
	if problems := verifyDeltas(before, after, rep); len(problems) != 0 {
		t.Errorf("consistent deltas flagged: %v", problems)
	}

	// An eviction the client could not observe (still draining buffers at
	// window end) shifts a stream from the abort to the eviction bucket;
	// conservation still holds and must NOT be flagged.
	after["evicted"] = 4
	after["aborted"] = 0
	if problems := verifyDeltas(before, after, rep); len(problems) != 0 {
		t.Errorf("unobserved eviction flagged: %v", problems)
	}

	// A reaped increment during the load is always a miscount.
	after["reaped"] = 6
	if problems := verifyDeltas(before, after, rep); len(problems) != 1 || !strings.Contains(problems[0], "reaped") {
		t.Errorf("reaped cross-count not flagged: %v", problems)
	}
	after["reaped"] = 5

	// A lost stream — fewer terminal events than admissions — breaks
	// conservation.
	after["aborted"] = 0
	after["evicted"] = 3
	problems := verifyDeltas(before, after, rep)
	if len(problems) != 1 || !strings.Contains(problems[0], "conservation") {
		t.Errorf("lost stream not flagged: %v", problems)
	}

	// Fewer server evictions than clients actually observed is a
	// miscount even when conservation balances (evicted leaked into
	// aborted).
	after["evicted"] = 2
	after["aborted"] = 2
	problems = verifyDeltas(before, after, rep)
	if len(problems) != 1 || !strings.Contains(problems[0], "evicted") {
		t.Errorf("evicted undercount not flagged: %v", problems)
	}
}

// End-to-end: the load runs with a control plane attached and the
// verifier confirms the server's deltas — including a non-trivial
// baseline from a prior run, which the delta arithmetic must cancel
// out. No stalled clients here: with a finite -limit a stall can fit
// entirely in kernel socket buffers, making the server's "completed"
// and the client's "evicted" both defensible — the smoke runs the
// stalled verification against -limit 0 where eviction is forced.
func TestVerifyAgainstHTTPLive(t *testing.T) {
	addr, s := startServer(t, 20*units.KB)
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	cfg := config{addr: addr, clients: 4, slow: 1, rate: "100KB", duration: 800 * time.Millisecond}

	// First run pollutes the baseline; wait for its accounting to settle.
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ts, 3*time.Second)

	before, err := fetchMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load errors: %d\n%s", rep.Errors, rep)
	}
	if err := verifyAgainstHTTP(ts.URL, before, rep); err != nil {
		t.Errorf("verification failed against live server: %v", err)
	}
}

// waitFor polls /status until no streams are live, so counter snapshots
// taken afterwards are final.
func waitFor(t *testing.T, ts *httptest.Server, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		var st metrics.Status
		if err := fetchJSON(ts.URL, "/status", &st); err != nil {
			t.Fatal(err)
		}
		if st.ActiveStreams == 0 && st.Admitted == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not settle: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestParsePopulations(t *testing.T) {
	got, err := parsePopulations(" 100, 500 ,1000 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[1] != 500 || got[2] != 1000 {
		t.Errorf("parsePopulations = %v, want [100 500 1000]", got)
	}
	for _, bad := range []string{"", ",,", "10,zero", "0", "-5", "1.5"} {
		if _, err := parsePopulations(bad); err == nil {
			t.Errorf("parsePopulations(%q) accepted", bad)
		}
	}
}

func TestLagDeltaQuantile(t *testing.T) {
	before := metrics.HistogramJSON{
		Count:   10,
		Buckets: []metrics.BucketJSON{{LeMS: 1, Count: 6}, {LeMS: 2, Count: 4}},
	}
	after := metrics.HistogramJSON{
		Count: 110,
		Buckets: []metrics.BucketJSON{
			{LeMS: 1, Count: 96}, // +90 in this window
			{LeMS: 2, Count: 9},  // +5
			{LeMS: 16, Count: 5}, // +5
		},
	}
	// 100 window samples: ranks 1–90 land in le=1, 91–95 in le=2, 96–100
	// in le=16.
	if got := lagDeltaQuantile(before, after, 0.50); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := lagDeltaQuantile(before, after, 0.95); got != 2 {
		t.Errorf("p95 = %v, want 2", got)
	}
	if got := lagDeltaQuantile(before, after, 0.99); got != 16 {
		t.Errorf("p99 = %v, want 16", got)
	}
	// Empty window: the cumulative totals are equal, so no quantile.
	if got := lagDeltaQuantile(after, after, 0.99); got != 0 {
		t.Errorf("empty-window quantile = %v, want 0", got)
	}
	// All window samples in overflow: report the finite histogram ceiling,
	// never ±Inf (it must survive JSON marshalling).
	of := metrics.HistogramJSON{Count: 5, Overflow: 5}
	ceiling := metrics.BucketBound(metrics.NumBuckets-2) * 1e3
	if got := lagDeltaQuantile(metrics.HistogramJSON{}, of, 0.5); got != ceiling {
		t.Errorf("overflow-only quantile = %v, want ceiling %v", got, ceiling)
	}
}

// A real two-step sweep against a live wheel-mode server: every step's
// deltas are isolated (step 2's counters don't include step 1's), each
// cohort completes, conservation holds per step, and the JSON document
// lands on disk with the declared schema.
func TestRunSweepLive(t *testing.T) {
	addr, s := startServerMode(t, 20*units.KB, serve.PacingWheel)
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	jsonPath := t.TempDir() + "/sweep.json"
	cfg := config{addr: addr, rate: "100KB", duration: 800 * time.Millisecond}
	var buf bytes.Buffer
	if err := runSweep(&buf, ts.URL, cfg, "3,5", jsonPath); err != nil {
		t.Fatalf("runSweep: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	t.Logf("sweep output:\n%s", out)
	if !strings.Contains(out, "sweep streams=3:") || !strings.Contains(out, "sweep streams=5:") {
		t.Errorf("missing per-step lines:\n%s", out)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc sweepReport
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("sweep JSON invalid: %v", err)
	}
	if doc.Schema != "memsload-sweep/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(doc.Steps))
	}
	for i, want := range []int{3, 5} {
		st := doc.Steps[i]
		if st.Streams != want {
			t.Errorf("step %d: streams = %d, want %d", i, st.Streams, want)
		}
		// Isolation + completion: this step's window admitted and completed
		// exactly its own cohort (20KB at 100KB/s finishes well inside the
		// run window), with no carry-over from the previous step.
		if st.Admitted != uint64(want) || st.Completed != uint64(want) {
			t.Errorf("step %d: admitted=%d completed=%d, want both %d", i, st.Admitted, st.Completed, want)
		}
		if st.Errors != 0 || st.Busy != 0 {
			t.Errorf("step %d: errors=%d busy=%d, want 0", i, st.Errors, st.Busy)
		}
		if got, want := st.Completed+st.Evicted+st.Aborted, st.Admitted; got != want {
			t.Errorf("step %d: conservation %d != admitted %d", i, got, want)
		}
		if st.BytesOut != uint64(want)*uint64(20*units.KB) {
			t.Errorf("step %d: bytes_out = %d, want %d", i, st.BytesOut, uint64(want)*uint64(20*units.KB))
		}
		if st.WheelFires == 0 {
			t.Errorf("step %d: wheel plane idle (wheel_fires=0)", i)
		}
		if st.LagSamples == 0 {
			t.Errorf("step %d: no lag samples in window", i)
		}
	}
}

func TestReportString(t *testing.T) {
	rep, err := run(config{addr: "127.0.0.1:1", clients: 2, rate: "100KB", duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing listens there: both clients error, and the report renders.
	if rep.Errors != 2 {
		t.Errorf("Errors = %d, want 2", rep.Errors)
	}
	out := rep.String()
	for _, key := range []string{"errors=2", "bytes_in=", "admission_latency_ms"} {
		if !strings.Contains(out, key) {
			t.Errorf("report %q missing %q", out, key)
		}
	}
}
