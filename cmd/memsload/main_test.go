package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/metrics"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/serve"
	"memstream/internal/units"
)

// startServer runs a hardened serve.Server on a loopback port with fast
// deadlines, returning its address and the server for slot inspection.
func startServer(t *testing.T, limit units.Bytes) (string, *serve.Server) {
	t.Helper()
	p := disk.FutureDisk()
	s, err := serve.New(serve.Config{
		Admission: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()},
			DRAMCap: 1 * units.GB,
		},
		DefaultRate:  100 * units.KBPS,
		Limit:        limit,
		ReadTimeout:  time.Second,
		WriteTimeout: 100 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		Quantum:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not drain")
		}
	})
	return ln.Addr().String(), s
}

// The full loop: a mixed client population (normal + slow + stalled)
// runs against a live server; normal and slow clients complete, stalled
// clients are evicted, and the server ends with zero leaked slots.
func TestLoadAgainstLiveServer(t *testing.T) {
	addr, s := startServer(t, 20*units.KB) // ~40ms per stream at 100KB/s with 5ms quanta
	rep, err := run(config{
		addr:     addr,
		clients:  6,
		slow:     1,
		stall:    2,
		rate:     "100KB",
		duration: 800 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("Errors = %d, want 0", rep.Errors)
	}
	if rep.Admitted != 6 {
		t.Errorf("Admitted = %d, want 6 (1GB DRAM fits all)", rep.Admitted)
	}
	// The 4 reading clients (3 normal + 1 slow) receive the full limit.
	if rep.Completed < 4 {
		t.Errorf("Completed = %d, want ≥ 4", rep.Completed)
	}
	// Both stalled clients observe the server closing on them.
	if rep.Evicted != 2 {
		t.Errorf("stall evictions = %d, want 2", rep.Evicted)
	}
	if rep.Bytes < int64(4*20*units.KB) {
		t.Errorf("Bytes = %d, want ≥ %d", rep.Bytes, int64(4*20*units.KB))
	}
	if _, ok := rep.Latency.Quantile(0.5); !ok {
		t.Error("no admission-latency samples recorded")
	}
	// Zero leaked slots after the load: the waitDrained probe the smoke
	// test uses must succeed promptly.
	if err := waitDrained(addr, 3*time.Second); err != nil {
		t.Errorf("server did not drain after load: %v", err)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after load, want 0", got)
	}
}

func TestQueryStatAndMetrics(t *testing.T) {
	addr, _ := startServer(t, 1*units.KB)
	line, err := query(addr, "STAT", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK admitted=0 capacity=") {
		t.Errorf("STAT = %q", line)
	}
	line, err = query(addr, "METRICS", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK ") || !strings.Contains(line, "evicted=") {
		t.Errorf("METRICS = %q", line)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := run(config{clients: 0}); err == nil {
		t.Error("clients=0 accepted")
	}
	if _, err := run(config{clients: 2, slow: 2, stall: 1}); err == nil {
		t.Error("slow+stall > clients accepted")
	}
	if _, err := run(config{clients: 1, rate: "fast"}); err == nil {
		t.Error("bad rate accepted")
	}
}

// The -http-metrics probe against a live control plane: flattened
// key=value output with the counter and status keys the smoke greps for.
func TestProbeHTTP(t *testing.T) {
	_, s := startServer(t, 1*units.KB)
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	var buf bytes.Buffer
	if err := probeHTTP(&buf, ts.URL+"/"); err != nil { // trailing slash is tolerated
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{
		"status.state=serving", "status.admitted=0",
		"counters.admitted_total=0", "counters.reaped=0", "counters.aborted=0",
		"lag.count=0", "tier.dram.utilization=", "tier.disk.utilization=", "streams.live=0",
	} {
		if !strings.Contains(out, key) {
			t.Errorf("probe output missing %q:\n%s", key, out)
		}
	}
	// No samples yet: quantile keys must be absent, matching the METRICS
	// line's omission semantics.
	if strings.Contains(out, "lag.p95_ms=") {
		t.Errorf("probe rendered quantiles with zero samples:\n%s", out)
	}

	if err := probeHTTP(io.Discard, "http://127.0.0.1:1"); err == nil {
		t.Error("probe against dead endpoint succeeded")
	}
}

func TestVerifyDeltas(t *testing.T) {
	before := map[string]uint64{
		"admitted_total": 3, "admission_busy": 1, "completed": 2,
		"evicted": 1, "aborted": 0, "reaped": 5, "bytes_out": 1000,
	}
	after := map[string]uint64{
		"admitted_total": 9, "admission_busy": 3, "completed": 5,
		"evicted": 3, "aborted": 1, "reaped": 5, "bytes_out": 90000,
	}
	rep := &report{Admitted: 6, Busy: 2, Completed: 3, Evicted: 2, Bytes: 80000}
	if problems := verifyDeltas(before, after, rep); len(problems) != 0 {
		t.Errorf("consistent deltas flagged: %v", problems)
	}

	// An eviction the client could not observe (still draining buffers at
	// window end) shifts a stream from the abort to the eviction bucket;
	// conservation still holds and must NOT be flagged.
	after["evicted"] = 4
	after["aborted"] = 0
	if problems := verifyDeltas(before, after, rep); len(problems) != 0 {
		t.Errorf("unobserved eviction flagged: %v", problems)
	}

	// A reaped increment during the load is always a miscount.
	after["reaped"] = 6
	if problems := verifyDeltas(before, after, rep); len(problems) != 1 || !strings.Contains(problems[0], "reaped") {
		t.Errorf("reaped cross-count not flagged: %v", problems)
	}
	after["reaped"] = 5

	// A lost stream — fewer terminal events than admissions — breaks
	// conservation.
	after["aborted"] = 0
	after["evicted"] = 3
	problems := verifyDeltas(before, after, rep)
	if len(problems) != 1 || !strings.Contains(problems[0], "conservation") {
		t.Errorf("lost stream not flagged: %v", problems)
	}

	// Fewer server evictions than clients actually observed is a
	// miscount even when conservation balances (evicted leaked into
	// aborted).
	after["evicted"] = 2
	after["aborted"] = 2
	problems = verifyDeltas(before, after, rep)
	if len(problems) != 1 || !strings.Contains(problems[0], "evicted") {
		t.Errorf("evicted undercount not flagged: %v", problems)
	}
}

// End-to-end: the load runs with a control plane attached and the
// verifier confirms the server's deltas — including a non-trivial
// baseline from a prior run, which the delta arithmetic must cancel
// out. No stalled clients here: with a finite -limit a stall can fit
// entirely in kernel socket buffers, making the server's "completed"
// and the client's "evicted" both defensible — the smoke runs the
// stalled verification against -limit 0 where eviction is forced.
func TestVerifyAgainstHTTPLive(t *testing.T) {
	addr, s := startServer(t, 20*units.KB)
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	cfg := config{addr: addr, clients: 4, slow: 1, rate: "100KB", duration: 800 * time.Millisecond}

	// First run pollutes the baseline; wait for its accounting to settle.
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ts, 3*time.Second)

	before, err := fetchMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load errors: %d\n%s", rep.Errors, rep)
	}
	if err := verifyAgainstHTTP(ts.URL, before, rep); err != nil {
		t.Errorf("verification failed against live server: %v", err)
	}
}

// waitFor polls /status until no streams are live, so counter snapshots
// taken afterwards are final.
func waitFor(t *testing.T, ts *httptest.Server, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		var st metrics.Status
		if err := fetchJSON(ts.URL, "/status", &st); err != nil {
			t.Fatal(err)
		}
		if st.ActiveStreams == 0 && st.Admitted == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not settle: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestReportString(t *testing.T) {
	rep, err := run(config{addr: "127.0.0.1:1", clients: 2, rate: "100KB", duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing listens there: both clients error, and the report renders.
	if rep.Errors != 2 {
		t.Errorf("Errors = %d, want 2", rep.Errors)
	}
	out := rep.String()
	for _, key := range []string{"errors=2", "bytes_in=", "admission_latency_ms"} {
		if !strings.Contains(out, key) {
			t.Errorf("report %q missing %q", out, key)
		}
	}
}
