package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/serve"
	"memstream/internal/units"
)

// startServer runs a hardened serve.Server on a loopback port with fast
// deadlines, returning its address and the server for slot inspection.
func startServer(t *testing.T, limit units.Bytes) (string, *serve.Server) {
	t.Helper()
	p := disk.FutureDisk()
	s, err := serve.New(serve.Config{
		Admission: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()},
			DRAMCap: 1 * units.GB,
		},
		DefaultRate:  100 * units.KBPS,
		Limit:        limit,
		ReadTimeout:  time.Second,
		WriteTimeout: 100 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		Quantum:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not drain")
		}
	})
	return ln.Addr().String(), s
}

// The full loop: a mixed client population (normal + slow + stalled)
// runs against a live server; normal and slow clients complete, stalled
// clients are evicted, and the server ends with zero leaked slots.
func TestLoadAgainstLiveServer(t *testing.T) {
	addr, s := startServer(t, 20*units.KB) // ~40ms per stream at 100KB/s with 5ms quanta
	rep, err := run(config{
		addr:     addr,
		clients:  6,
		slow:     1,
		stall:    2,
		rate:     "100KB",
		duration: 800 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("Errors = %d, want 0", rep.Errors)
	}
	if rep.Admitted != 6 {
		t.Errorf("Admitted = %d, want 6 (1GB DRAM fits all)", rep.Admitted)
	}
	// The 4 reading clients (3 normal + 1 slow) receive the full limit.
	if rep.Completed < 4 {
		t.Errorf("Completed = %d, want ≥ 4", rep.Completed)
	}
	// Both stalled clients observe the server closing on them.
	if rep.Evicted != 2 {
		t.Errorf("stall evictions = %d, want 2", rep.Evicted)
	}
	if rep.Bytes < int64(4*20*units.KB) {
		t.Errorf("Bytes = %d, want ≥ %d", rep.Bytes, int64(4*20*units.KB))
	}
	if _, ok := rep.Latency.Quantile(0.5); !ok {
		t.Error("no admission-latency samples recorded")
	}
	// Zero leaked slots after the load: the waitDrained probe the smoke
	// test uses must succeed promptly.
	if err := waitDrained(addr, 3*time.Second); err != nil {
		t.Errorf("server did not drain after load: %v", err)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after load, want 0", got)
	}
}

func TestQueryStatAndMetrics(t *testing.T) {
	addr, _ := startServer(t, 1*units.KB)
	line, err := query(addr, "STAT", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK admitted=0 capacity=") {
		t.Errorf("STAT = %q", line)
	}
	line, err = query(addr, "METRICS", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK ") || !strings.Contains(line, "evicted=") {
		t.Errorf("METRICS = %q", line)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := run(config{clients: 0}); err == nil {
		t.Error("clients=0 accepted")
	}
	if _, err := run(config{clients: 2, slow: 2, stall: 1}); err == nil {
		t.Error("slow+stall > clients accepted")
	}
	if _, err := run(config{clients: 1, rate: "fast"}); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestReportString(t *testing.T) {
	rep, err := run(config{addr: "127.0.0.1:1", clients: 2, rate: "100KB", duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing listens there: both clients error, and the report renders.
	if rep.Errors != 2 {
		t.Errorf("Errors = %d, want 2", rep.Errors)
	}
	out := rep.String()
	for _, key := range []string{"errors=2", "bytes_in=", "admission_latency_ms"} {
		if !strings.Contains(out, key) {
			t.Errorf("report %q missing %q", out, key)
		}
	}
}
