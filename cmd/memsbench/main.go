// Command memsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	memsbench                  # run every experiment
//	memsbench -list            # list experiment IDs
//	memsbench -run fig9a       # run one experiment
//	memsbench -run fig6 -csv   # also emit the series as CSV
//	memsbench -out results/    # write each artifact to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"memstream/internal/experiments"
	"memstream/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "memsbench:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments, writing artifacts to
// w. Factored out of main so the CLI surface is testable.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("memsbench", flag.ContinueOnError)
	fs.SetOutput(w)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	runID := fs.String("run", "", "run a single experiment by ID (default: all)")
	csv := fs.Bool("csv", false, "append CSV series data to plot experiments")
	out := fs.String("out", "", "write artifacts to this directory instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Fprintf(w, "%-16s %s\n", id, title)
		}
		return nil
	}

	ids := experiments.IDs()
	if *runID != "" {
		ids = []string{*runID}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			return err
		}
		text := fmt.Sprintf("==== %s: %s ====\n%s\n", res.ID, res.Title, res.Output)
		if *csv && len(res.Series) > 0 {
			text += "\nCSV:\n" + plot.CSV(res.Series)
		}
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", path)
			continue
		}
		fmt.Fprint(w, text)
	}
	return nil
}
