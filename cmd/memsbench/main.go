// Command memsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	memsbench                       # run every experiment
//	memsbench -list                 # list experiment IDs
//	memsbench -run fig9a            # run one experiment
//	memsbench -run 'fig9.*' -csv    # run a family, emit series as CSV
//	memsbench -out results/         # write each artifact to a file
//	memsbench -parallel 8 -json m.json  # parallel suite + metrics doc
//	memsbench -run fig5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	memsbench -perf perf.json       # per-experiment wall/events-per-sec doc
//	memsbench -run shardscale -shards 8  # sharded experiment on 8 goroutines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"memstream/internal/experiments"
	"memstream/internal/plot"
	"memstream/internal/tier"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "memsbench:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments, writing artifacts to
// w. Factored out of main so the CLI surface is testable.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("memsbench", flag.ContinueOnError)
	fs.SetOutput(w)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	runPat := fs.String("run", "", "run experiments matching this anchored regexp (default: all)")
	csv := fs.Bool("csv", false, "append CSV series data to plot experiments")
	out := fs.String("out", "", "write artifacts to this directory instead of stdout")
	parallel := fs.Int("parallel", 1, "worker count for the suite (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 1, "shard goroutine count for sharded experiments (artifacts are byte-identical at any value)")
	seed := fs.Uint64("seed", experiments.DefaultSeed, "root seed; per-experiment seeds derive from it")
	tierName := fs.String("tier", tier.Default, "middle-tier parameter set: "+strings.Join(tier.Names(), ", "))
	jsonPath := fs.String("json", "", "write the per-run metrics document to this file")
	perfPath := fs.String("perf", "", "write the per-experiment performance document to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.SetShardWorkers(*shards)
	if err := experiments.SetTier(*tierName); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle allocations so the heap profile is steady-state
			pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Fprintf(w, "%-16s %s\n", id, title)
		}
		return nil
	}

	ids, err := experiments.Match(*runPat)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	suite, err := experiments.RunSuite(ids, *seed, *parallel, nil)
	if err != nil {
		return err
	}
	// Artifacts print in ID order regardless of completion order, so the
	// output is byte-identical at any -parallel value.
	for _, rep := range suite.Runs {
		if rep.Error != "" {
			return fmt.Errorf("%s: %s", rep.ID, rep.Error)
		}
		res := rep.Result
		text := fmt.Sprintf("==== %s: %s ====\n%s\n", res.ID, res.Title, res.Output)
		if *csv && len(res.Series) > 0 {
			text += "\nCSV:\n" + plot.CSV(res.Series)
		}
		if *out != "" {
			path := filepath.Join(*out, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", path)
			continue
		}
		fmt.Fprint(w, text)
	}
	if *jsonPath != "" {
		if err := writeMetrics(*jsonPath, suite); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics: %s (%d runs, wall %v)\n", *jsonPath, len(suite.Runs), suite.Wall.Round(1e6))
	}
	if *perfPath != "" {
		if err := writePerf(*perfPath, suite); err != nil {
			return err
		}
		fmt.Fprintf(w, "perf: %s (%d runs)\n", *perfPath, len(suite.Runs))
	}
	return nil
}

func writeMetrics(path string, suite experiments.SuiteReport) error {
	data, err := json.MarshalIndent(suite, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// perfEntry is one experiment's line in the performance trajectory
// document scripts/bench.sh assembles into BENCH_<n>.json.
type perfEntry struct {
	ID           string  `json:"id"`
	WallNS       int64   `json:"wall_ns"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// writePerf reduces a suite report to per-experiment throughput numbers.
// Analytic experiments fire no events and report zero events/sec.
func writePerf(path string, suite experiments.SuiteReport) error {
	entries := make([]perfEntry, 0, len(suite.Runs))
	for _, r := range suite.Runs {
		e := perfEntry{ID: r.ID, WallNS: int64(r.Wall), Events: r.Events}
		if r.Wall > 0 {
			e.EventsPerSec = float64(r.Events) / r.Wall.Seconds()
		}
		entries = append(entries, e)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
