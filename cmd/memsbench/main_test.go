package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memstream/internal/experiments"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig9a", "validate", "dynamics"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "table2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "==== table2") {
		t.Errorf("missing header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "S_disk-dram") {
		t.Error("missing table body")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "fig99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "fig2", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CSV:") {
		t.Error("CSV section missing")
	}
	if !strings.Contains(out.String(), "x,MEMS (max. latency),Disk (avg. latency)") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestRunOutDirectory(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-run", "table1", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Storage media characteristics") {
		t.Error("artifact file content wrong")
	}
	if !strings.Contains(out.String(), "wrote ") {
		t.Error("no progress line")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRegexpFamily(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "table."}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"==== table1", "==== table2", "==== table3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("family run missing %s", want)
		}
	}
	if strings.Contains(out.String(), "==== fig") {
		t.Error("family run matched outside the family")
	}
}

func TestRunParallelOutputIdentical(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run([]string{"-run", "table.|besteffort|ablation-devcache", "-parallel", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "table.|besteffort|ablation-devcache", "-parallel", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Error("-parallel changed the rendered output")
	}
}

func TestRunPerfDocument(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "perf.json")
	var out strings.Builder
	if err := run([]string{"-run", "validate|table1", "-perf", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		ID           string  `json:"id"`
		WallNS       int64   `json:"wall_ns"`
		Events       uint64  `json:"events"`
		EventsPerSec float64 `json:"events_per_sec"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("perf doc not valid JSON: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("perf entries = %d, want 2", len(entries))
	}
	byID := map[string]float64{}
	for _, e := range entries {
		if e.WallNS <= 0 {
			t.Errorf("%s: wall_ns = %d", e.ID, e.WallNS)
		}
		byID[e.ID] = e.EventsPerSec
	}
	// validate embeds simulations, so it must report real event throughput;
	// table1 is analytic and reports zero.
	if byID["validate"] <= 0 {
		t.Errorf("validate events_per_sec = %v, want > 0", byID["validate"])
	}
	if byID["table1"] != 0 {
		t.Errorf("table1 events_per_sec = %v, want 0 (analytic)", byID["table1"])
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out strings.Builder
	if err := run([]string{"-run", "table1", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// The shardscale artifact is byte-identical at -shards 1 and -shards 8 —
// the same contract CI enforces by diffing the two runs' -out trees.
func TestRunShardsArtifactIdentical(t *testing.T) {
	var one, eight strings.Builder
	if err := run([]string{"-run", "shardscale", "-shards", "1"}, &one); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "shardscale", "-shards", "8"}, &eight); err != nil {
		t.Fatal(err)
	}
	if one.String() != eight.String() {
		t.Error("-shards changed the shardscale artifact")
	}
	if !strings.Contains(one.String(), "merged (order-independent fold") {
		t.Errorf("artifact missing merged section:\n%s", one.String())
	}
}

func TestRunJSONMetrics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	var out strings.Builder
	if err := run([]string{"-run", "table1", "-seed", "99", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var suite experiments.SuiteReport
	if err := json.Unmarshal(data, &suite); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if suite.RootSeed != 99 || len(suite.Runs) != 1 || suite.Runs[0].ID != "table1" {
		t.Errorf("suite = %+v", suite)
	}
	if !strings.Contains(out.String(), "metrics: ") {
		t.Error("no metrics progress line")
	}
}
