module memstream

go 1.22
