package memstream_test

import (
	"fmt"

	"memstream"
)

// Planning a direct disk→DRAM server for 100 DVD-quality streams.
func ExamplePlanDirect() {
	plan, err := memstream.PlanDirect(
		memstream.Load{Streams: 100, BitRate: 1e6},
		memstream.FutureDisk(),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cycle %v, per-stream %.0fKB, total %.1fMB\n",
		plan.Cycle, plan.PerStreamBytes/1e3, plan.TotalDRAMBytes/1e6)
	// Output:
	// cycle 645ms, per-stream 645KB, total 64.5MB
}

// The paper's Eq 11: a cache holding 5% of a 10:90 catalog absorbs 45% of
// accesses.
func ExampleHitRatio() {
	h, _ := memstream.HitRatio(10, 90, 0.05)
	fmt.Printf("h = %.2f\n", h)
	// Output:
	// h = 0.45
}

// Folding a heterogeneous mix into the model's (N, B̄) form.
func ExampleMixedLoad() {
	load := memstream.MixedLoad(
		memstream.ClassCount{Streams: 100, BitRate: 1e6}, // DVD
		memstream.ClassCount{Streams: 900, BitRate: 1e5}, // DivX
	)
	fmt.Printf("N=%d, B̄=%.0fKB/s\n", load.Streams, load.BitRate/1e3)
	// Output:
	// N=1000, B̄=190KB/s
}

// Sizing the MEMS buffer for a DivX population: the staged disk IOs grow
// three orders of magnitude while DRAM shrinks ~16x.
func ExamplePlanMEMSBuffer() {
	load := memstream.Load{Streams: 2000, BitRate: 1e5}
	direct, _ := memstream.PlanDirect(load, memstream.FutureDisk())
	buffered, err := memstream.PlanMEMSBuffer(load, memstream.FutureDisk(), memstream.G3MEMS(), 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("DRAM %.0fx smaller, disk IOs %.0fKB -> %.0fMB\n",
		direct.TotalDRAMBytes/buffered.TotalDRAMBytes,
		direct.IOBytes/1e3, buffered.DiskIOBytes/1e6)
	// Output:
	// DRAM 16x smaller, disk IOs 2580KB -> 5MB
}

// Capacity planning: the maximum HDTV population one FutureDisk carries.
func ExampleMaxStreams() {
	n := memstream.MaxStreams(1e7, memstream.FutureDisk(), 0)
	fmt.Printf("max HDTV streams: %d\n", n)
	// Output:
	// max HDTV streams: 29
}
