# memstream build targets. Stdlib-only Go; no external tools required.

GO ?= go

.PHONY: all build test vet bench repro fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench regenerates every paper artifact as a testing.B benchmark.
bench:
	$(GO) test -bench=. -benchmem ./...

# repro writes every table/figure to results/ as text artifacts.
repro:
	$(GO) run ./cmd/memsbench -out results

# fuzz gives each fuzz target a short budget; extend for deeper runs.
fuzz:
	$(GO) test -fuzz FuzzParseBytes -fuzztime 30s ./internal/units/
	$(GO) test -fuzz FuzzParseRate -fuzztime 30s ./internal/units/
	$(GO) test -fuzz FuzzReadText -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 30s ./internal/trace/

cover:
	$(GO) test -cover ./...

clean:
	rm -rf results
