# memstream build targets. Stdlib-only Go; no external tools required.

GO ?= go

.PHONY: all build test vet race bench bench-sim bench-record profile repro suite smoke fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full test suite under the race detector — the parallel
# experiment runner must stay race-clean.
race:
	$(GO) test -race ./...

# bench regenerates every paper artifact as a testing.B benchmark.
bench:
	$(GO) test -bench=. -benchmem ./...

# bench-sim runs the hot-path microbenchmarks — the simulation kernel,
# the lock-free metrics collector, the timer wheel, the serve data
# plane, the rig's cycle walk, and the popularity sampler — the set CI
# compares old-vs-new with benchstat. BENCH_COUNT>1 gives benchstat
# samples to work with.
bench-sim:
	$(GO) test -run '^$$' -bench . -benchmem -count $(or $(BENCH_COUNT),1) ./internal/sim/ ./internal/metrics/ ./internal/wheel/ ./internal/serve/ ./internal/server/ ./internal/workload/

# bench-record appends one BENCH_<n>.json point to the kernel performance
# trajectory (microbenchmarks + per-experiment events/sec).
bench-record:
	sh scripts/bench.sh

# profile writes cpu/heap pprof artifacts for the heaviest event-driven
# experiments (validate and dynamics dominate suite wall time; occupancy
# is the trace-bearing run), so perf work starts from a flame graph:
# go tool pprof -http=: profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/memsbench -run 'validate|dynamics|occupancy' \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof -out profiles
	@echo "profiles: profiles/cpu.pprof profiles/mem.pprof"

# profile-scale profiles the sharded scaling scenario — the per-partition
# steady-state hot path (SoA cycle walk, pooled C-LOOK dispatch, event
# kernel) that dominates million-stream runs. Reading workflow in
# EXPERIMENTS.md ("Profiling the scaling hot path").
profile-scale:
	mkdir -p profiles
	$(GO) run ./cmd/memsbench -run shardscale -shards 1 \
		-cpuprofile profiles/scale-cpu.pprof -memprofile profiles/scale-mem.pprof -out profiles
	@echo "profiles: profiles/scale-cpu.pprof profiles/scale-mem.pprof"

# repro writes every table/figure to results/ as text artifacts.
repro:
	$(GO) run ./cmd/memsbench -out results

# suite runs every experiment on a parallel worker pool and writes the
# per-run metrics document next to the artifacts.
suite:
	$(GO) run ./cmd/memsim -experiments -parallel 0 -out results -json results/metrics.json

# smoke runs the memserve↔memsload end-to-end check: load with stalled
# clients, zero leaked admission slots, graceful SIGTERM drain (exit 0).
smoke:
	sh scripts/smoke.sh

# fuzz gives each fuzz target a short budget; extend for deeper runs.
fuzz:
	$(GO) test -fuzz FuzzParseBytes -fuzztime 30s ./internal/units/
	$(GO) test -fuzz FuzzParseRate -fuzztime 30s ./internal/units/
	$(GO) test -fuzz FuzzReadText -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 30s ./internal/trace/

# cover runs the suite with coverage profiles and enforces the
# internal/server statement-coverage floor (scripts/cover.sh).
cover:
	sh scripts/cover.sh

clean:
	rm -rf results profiles
