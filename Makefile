# memstream build targets. Stdlib-only Go; no external tools required.

GO ?= go

.PHONY: all build test vet race bench repro suite smoke fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full test suite under the race detector — the parallel
# experiment runner must stay race-clean.
race:
	$(GO) test -race ./...

# bench regenerates every paper artifact as a testing.B benchmark.
bench:
	$(GO) test -bench=. -benchmem ./...

# repro writes every table/figure to results/ as text artifacts.
repro:
	$(GO) run ./cmd/memsbench -out results

# suite runs every experiment on a parallel worker pool and writes the
# per-run metrics document next to the artifacts.
suite:
	$(GO) run ./cmd/memsim -experiments -parallel 0 -out results -json results/metrics.json

# smoke runs the memserve↔memsload end-to-end check: load with stalled
# clients, zero leaked admission slots, graceful SIGTERM drain (exit 0).
smoke:
	sh scripts/smoke.sh

# fuzz gives each fuzz target a short budget; extend for deeper runs.
fuzz:
	$(GO) test -fuzz FuzzParseBytes -fuzztime 30s ./internal/units/
	$(GO) test -fuzz FuzzParseRate -fuzztime 30s ./internal/units/
	$(GO) test -fuzz FuzzReadText -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 30s ./internal/trace/

# cover runs the suite with coverage profiles and enforces the
# internal/server statement-coverage floor (scripts/cover.sh).
cover:
	sh scripts/cover.sh

clean:
	rm -rf results
