// vodplanner sizes a video-on-demand deployment: for each media class it
// reports how many streams one FutureDisk sustains, the DRAM bill with and
// without a MEMS buffer, and the break-even point — the paper's design
// guideline (i) in action.
//
//	go run ./examples/vodplanner [-dram 5GB]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"memstream"
)

type mediaClass struct {
	name    string
	bitRate float64
}

func main() {
	dramFlag := flag.String("dram", "5GB", "DRAM budget, e.g. 5GB")
	flag.Parse()
	dram, err := parseGB(*dramFlag)
	if err != nil {
		log.Fatalf("vodplanner: %v", err)
	}

	classes := []mediaClass{
		{"mp3 (10KB/s)", 10e3},
		{"DivX (100KB/s)", 100e3},
		{"DVD (1MB/s)", 1e6},
		{"HDTV (10MB/s)", 10e6},
	}
	diskDev := memstream.FutureDisk()
	memsDev := memstream.G3MEMS()
	costs := memstream.DefaultCosts()

	fmt.Printf("VoD capacity planning, one %s, %.1fGB DRAM budget\n\n", diskDev.Name, dram/1e9)
	fmt.Printf("%-16s %10s %14s %14s %10s\n",
		"class", "streams", "direct DRAM", "buffered DRAM", "saving")
	for _, c := range classes {
		n := memstream.MaxStreams(c.bitRate, diskDev, dram)
		if n == 0 {
			fmt.Printf("%-16s %10s\n", c.name, "infeasible")
			continue
		}
		load := memstream.Load{Streams: n, BitRate: c.bitRate}
		direct, err := memstream.PlanDirect(load, diskDev)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-16s %10d %13.2fGB", c.name, n, direct.TotalDRAMBytes/1e9)
		buffered, err := memstream.PlanMEMSBuffer(load, diskDev, memsDev, 2)
		if err != nil {
			fmt.Printf("%s %14s\n", line, "needs >2 devices")
			continue
		}
		without, _ := memstream.BufferingCost(load, diskDev, costs)
		with, _ := memstream.BufferedCost(load, diskDev, memsDev, 2, costs)
		fmt.Printf("%s %13.3fGB %9.0f%%\n",
			line, buffered.TotalDRAMBytes/1e9, 100*(1-with/without))
	}
	fmt.Println("\nGuideline (i): buffer low/medium bit-rate streams through MEMS;")
	fmt.Println("at high bit-rates plain DRAM is already enough (paper §5.1).")
}

func parseGB(s string) (float64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(t, "TB"):
		mult, t = 1e12, strings.TrimSuffix(t, "TB")
	case strings.HasSuffix(t, "GB"):
		mult, t = 1e9, strings.TrimSuffix(t, "GB")
	case strings.HasSuffix(t, "MB"):
		mult, t = 1e6, strings.TrimSuffix(t, "MB")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
