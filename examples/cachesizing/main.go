// cachesizing picks a MEMS cache configuration for a content popularity
// profile: it sweeps the bank size and both cache-management policies at a
// fixed budget and reports the throughput of each option — the decision
// the paper's Figures 9 and 10 inform.
//
//	go run ./examples/cachesizing -x 5 -y 95 -budget 100
package main

import (
	"flag"
	"fmt"
	"log"

	"memstream"
)

func main() {
	x := flag.Float64("x", 10, "popularity X: percent of titles that are hot")
	y := flag.Float64("y", 90, "popularity Y: percent of accesses the hot titles draw")
	budget := flag.Float64("budget", 100, "total buffering budget in dollars")
	bitRate := flag.Float64("bitrate", 100e3, "stream bit-rate in bytes/s")
	content := flag.Float64("content", 1e12, "catalog footprint in bytes")
	flag.Parse()

	diskDev := memstream.FutureDisk()
	memsDev := memstream.G3MEMS()
	costs := memstream.DefaultCosts()
	devCost := costs.MEMSPerGB * memsDev.CapacityBytes / 1e9

	baselineDRAM := *budget / costs.DRAMPerGB * 1e9
	baseline := memstream.MaxStreams(*bitRate, diskDev, baselineDRAM)
	fmt.Printf("Popularity %g:%g, $%.0f budget, %.0fKB/s streams, %.0fGB catalog\n\n",
		*x, *y, *budget, *bitRate/1e3, *content/1e9)
	fmt.Printf("No cache: %.1fGB DRAM -> %d streams\n\n", baselineDRAM/1e9, baseline)
	fmt.Printf("%3s %10s %12s %12s %12s\n", "k", "DRAM left", "striped", "replicated", "best gain")

	bestStreams, bestDesc := baseline, "no cache"
	for k := 1; float64(k)*devCost < *budget; k++ {
		dram := (*budget - float64(k)*devCost) / costs.DRAMPerGB * 1e9
		st := memstream.MaxStreamsWithCache(*bitRate, diskDev, memsDev, k,
			memstream.Striped, *content, *x, *y, dram)
		re := memstream.MaxStreamsWithCache(*bitRate, diskDev, memsDev, k,
			memstream.Replicated, *content, *x, *y, dram)
		top, desc := st, fmt.Sprintf("striped k=%d", k)
		if re > st {
			top, desc = re, fmt.Sprintf("replicated k=%d", k)
		}
		gain := 100 * (float64(top) - float64(baseline)) / float64(baseline)
		fmt.Printf("%3d %8.1fGB %12d %12d %+10.0f%%\n", k, dram/1e9, st, re, gain)
		if top > bestStreams {
			bestStreams, bestDesc = top, desc
		}
		if k >= 8 {
			break
		}
	}

	fmt.Printf("\nRecommendation: %s (%d streams)\n", bestDesc, bestStreams)
	h, err := memstream.HitRatio(*x, *y, memsDev.CapacityBytes / *content)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("One device caches %.1f%% of the catalog for a %.0f%% hit ratio (Eq 11).\n",
		100*memsDev.CapacityBytes / *content, 100*h)
}
