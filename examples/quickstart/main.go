// Quickstart: plan a streaming server with and without a MEMS buffer and
// check the buffered plan in simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memstream"
)

func main() {
	// 2,000 DivX-quality streams at 100KB/s on the paper's 2007 devices.
	load := memstream.Load{Streams: 2000, BitRate: 100e3}
	diskDev := memstream.FutureDisk()
	memsDev := memstream.G3MEMS()

	direct, err := memstream.PlanDirect(load, diskDev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Direct disk→DRAM:\n")
	fmt.Printf("  IO cycle          %v\n", direct.Cycle)
	fmt.Printf("  per-stream buffer %.1f MB\n", direct.PerStreamBytes/1e6)
	fmt.Printf("  total DRAM        %.2f GB\n", direct.TotalDRAMBytes/1e9)

	buffered, err := memstream.PlanMEMSBuffer(load, diskDev, memsDev, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith a 2-device G3 MEMS buffer:\n")
	fmt.Printf("  disk IO cycle     %v (staged IOs of %.1f MB)\n",
		buffered.DiskCycle, buffered.DiskIOBytes/1e6)
	fmt.Printf("  MEMS IO cycle     %v (M=%d disk transfers per cycle)\n",
		buffered.MEMSCycle, buffered.M)
	fmt.Printf("  total DRAM        %.3f GB (%.0fx less)\n",
		buffered.TotalDRAMBytes/1e9, direct.TotalDRAMBytes/buffered.TotalDRAMBytes)

	costs := memstream.DefaultCosts()
	without, _ := memstream.BufferingCost(load, diskDev, costs)
	with, _ := memstream.BufferedCost(load, diskDev, memsDev, 2, costs)
	fmt.Printf("\nBuffering cost: $%.2f direct vs $%.2f buffered (%.0f%% saved)\n",
		without, with, 100*(1-with/without))

	// Validate the buffered plan end to end on the device simulators.
	res, err := memstream.Simulate(memstream.SimConfig{
		Architecture: memstream.BufferedServer,
		Streams:      load.Streams,
		BitRate:      load.BitRate,
		MEMSDevices:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSimulation over %v: %d underflows, disk %.0f%% busy, MEMS %.0f%% busy\n",
		res.SimulatedTime, res.Underflows, 100*res.DiskUtilization, 100*res.MEMSUtilization)
}
