// bankscaling explores how the MEMS buffer bank scales: for a growing
// stream population it finds the smallest feasible bank, shows Corollary
// 2's k-fold throughput/latency scaling in the resulting plans, and
// validates one configuration end-to-end in the discrete-event simulator.
//
//	go run ./examples/bankscaling
package main

import (
	"fmt"
	"log"

	"memstream"
)

func main() {
	diskDev := memstream.FutureDisk()
	memsDev := memstream.G3MEMS()
	bitRate := 100e3 // DivX-class streams

	fmt.Println("MEMS buffer bank scaling for 100KB/s streams on FutureDisk")
	fmt.Printf("\n%8s %4s %14s %14s %10s\n", "streams", "k", "MEMS cycle", "DRAM total", "bank BW")
	for _, n := range []int{250, 500, 1000, 1600, 2000, 2400} {
		load := memstream.Load{Streams: n, BitRate: bitRate}
		k, plan, err := smallestBank(load, diskDev, memsDev, 16)
		if err != nil {
			fmt.Printf("%8d %4s %s\n", n, "-", err)
			continue
		}
		fmt.Printf("%8d %4d %14v %12.1fMB %7.0fMB/s\n",
			n, k, plan.MEMSCycle, plan.TotalDRAMBytes/1e6,
			float64(k)*memsDev.RateBytesPerSec/1e6)
	}

	fmt.Println("\nThe bank must carry 2x the stream bandwidth (every byte is staged and")
	fmt.Println("re-read), so k grows with N·B̄; per Corollary 2 the k-device bank then")
	fmt.Println("behaves as one device with k-fold throughput and 1/k latency.")

	// End-to-end check of the k=2 point.
	res, err := memstream.Simulate(memstream.SimConfig{
		Architecture: memstream.BufferedServer,
		Streams:      1000,
		BitRate:      bitRate,
		MEMSDevices:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSimulated N=1000, k=2 over %v: %d underflows, %d disk IOs, %d MEMS IOs\n",
		res.SimulatedTime, res.Underflows, res.DiskIOs, res.MEMSIOs)
	fmt.Printf("Peak DRAM %.1fMB vs planned minimum %.1fMB (pipeline headroom)\n",
		res.PeakDRAMBytes/1e6, res.PlannedDRAMBytes/1e6)
}

func smallestBank(load memstream.Load, diskDev, memsDev memstream.StorageDevice,
	maxK int) (int, memstream.BufferPlan, error) {
	var lastErr error
	for k := 1; k <= maxK; k++ {
		plan, err := memstream.PlanMEMSBuffer(load, diskDev, memsDev, k)
		if err == nil {
			return k, plan, nil
		}
		lastErr = err
	}
	return 0, memstream.BufferPlan{}, fmt.Errorf("no bank ≤%d devices works: %w", maxK, lastErr)
}
