// capacityplanner sizes a streaming service end to end: given an arrival
// rate and session length, it finds the admission capacity that meets a
// blocking target (Erlang-B), then prices the server configurations that
// provide that capacity — the teletraffic layer on top of the paper's
// throughput results.
//
//	go run ./examples/capacityplanner -arrivals 3 -hold 10m -blocking 0.01
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"memstream"
)

func main() {
	arrivals := flag.Float64("arrivals", 3, "session arrivals per second")
	hold := flag.Duration("hold", 10*time.Minute, "mean session length")
	blocking := flag.Float64("blocking", 0.01, "target blocking probability")
	bitRate := flag.Float64("bitrate", 100e3, "per-stream rate in bytes/s")
	flag.Parse()

	offered := *arrivals * hold.Seconds()
	capacity, err := memstream.CapacityForBlocking(offered, *blocking)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Offered load: %.0f erlangs (%.1f/s arrivals, %v sessions)\n",
		offered, *arrivals, *hold)
	fmt.Printf("Capacity for ≤%.1f%% blocking: %d concurrent streams\n\n",
		100**blocking, capacity)

	diskDev := memstream.FutureDisk()
	memsDev := memstream.G3MEMS()
	costs := memstream.DefaultCosts()
	load := memstream.Load{Streams: capacity, BitRate: *bitRate}

	// Option 1: direct.
	if plan, err := memstream.PlanDirect(load, diskDev); err == nil {
		fmt.Printf("direct:       %7.2fGB DRAM  -> $%.2f\n",
			plan.TotalDRAMBytes/1e9, plan.TotalDRAMBytes/1e9*costs.DRAMPerGB)
	} else {
		fmt.Printf("direct:       infeasible on one disk (%v)\n", err)
	}
	// Option 2: MEMS buffer, smallest feasible bank.
	for k := 2; k <= 16; k++ {
		plan, err := memstream.PlanMEMSBuffer(load, diskDev, memsDev, k)
		if err != nil {
			continue
		}
		bank := float64(k) * costs.MEMSPerGB * memsDev.CapacityBytes / 1e9
		fmt.Printf("MEMS buffer:  %7.3fGB DRAM + %dxG3 -> $%.2f\n",
			plan.TotalDRAMBytes/1e9, k,
			plan.TotalDRAMBytes/1e9*costs.DRAMPerGB+bank)
		break
	}
	// Option 3: MEMS cache under a 5:95 popularity profile.
	for k := 1; k <= 8; k++ {
		dramNeeded := dramForCache(load, diskDev, memsDev, k)
		if dramNeeded < 0 {
			continue
		}
		bank := float64(k) * costs.MEMSPerGB * memsDev.CapacityBytes / 1e9
		fmt.Printf("MEMS cache:   %7.3fGB DRAM + %dxG3 -> $%.2f (5:95 popularity)\n",
			dramNeeded/1e9, k, dramNeeded/1e9*costs.DRAMPerGB+bank)
		break
	}
	fmt.Println("\nPick the cheapest feasible row; re-run with your popularity profile.")
}

// dramForCache returns the DRAM a k-device striped cache configuration
// needs for the load, or -1 if infeasible.
func dramForCache(load memstream.Load, diskDev, memsDev memstream.StorageDevice, k int) float64 {
	plan, err := memstream.PlanMEMSCache(load, diskDev, memsDev, k,
		memstream.Striped, 1e12, 5, 95)
	if err != nil {
		return -1
	}
	return plan.TotalDRAMBytes
}
