// recorder demonstrates the write-stream extension of §3.1: a mixed
// population of players and recorders sharing one MEMS-buffered pipeline.
// Recorded data flows DRAM → MEMS → disk, the reverse of playback, and the
// example shows both directions meeting their requirements: zero playback
// underflows and bounded recorder backlog.
//
//	go run ./examples/recorder [-streams 100] [-writers 30]
package main

import (
	"flag"
	"fmt"
	"log"

	"memstream"
)

func main() {
	streams := flag.Int("streams", 100, "total streams (players + recorders)")
	writers := flag.Int("writers", 30, "how many of the streams are recorders")
	bitRate := flag.Float64("bitrate", 1e6, "per-stream rate in bytes/s")
	flag.Parse()
	if *writers > *streams {
		log.Fatal("recorder: more writers than streams")
	}

	fmt.Printf("Mixed workload on a 2-device G3 MEMS buffer: %d players + %d recorders at %.0fKB/s\n\n",
		*streams-*writers, *writers, *bitRate/1e3)

	res, err := memstream.Simulate(memstream.SimConfig{
		Architecture: memstream.BufferedServer,
		Streams:      *streams,
		Writers:      *writers,
		BitRate:      *bitRate,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated time:        %v\n", res.SimulatedTime)
	fmt.Printf("playback underflows:   %d (%.0f bytes missed)\n", res.Underflows, res.UnderflowBytes)
	fmt.Printf("recorder peak backlog: %.2f MB of DRAM\n", res.WriterPeakDRAMBytes/1e6)
	fmt.Printf("disk IOs:              %d (reads for players, writes for recorders)\n", res.DiskIOs)
	fmt.Printf("MEMS IOs:              %d (every byte crosses the bank twice)\n", res.MEMSIOs)
	fmt.Printf("disk / MEMS busy:      %.0f%% / %.0f%%\n",
		100*res.DiskUtilization, 100*res.MEMSUtilization)

	seconds := res.WriterPeakDRAMBytes / *bitRate
	fmt.Printf("\nThe recorder backlog peaks at %.1f seconds of captured media — the\n", seconds)
	fmt.Println("staging pipeline keeps up, so recording needs the same small DRAM")
	fmt.Println("footprint playback does (§3.1's write-stream extension).")
}
