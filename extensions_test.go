package memstream

import (
	"math"
	"testing"
)

func TestPlanGSS(t *testing.T) {
	load := Load{Streams: 200, BitRate: 1e5}
	one, err := PlanGSS(load, FutureDisk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := PlanGSS(load, FutureDisk(), load.Streams)
	if err != nil {
		t.Fatal(err)
	}
	// g=1 sweeps everything: shortest cycle, 2x buffer factor.
	if one.Cycle >= n.Cycle {
		t.Errorf("g=1 cycle %v not below g=N cycle %v", one.Cycle, n.Cycle)
	}
	f1 := one.PerStreamBytes / (load.BitRate * one.Cycle.Seconds())
	if math.Abs(f1-2) > 1e-9 {
		t.Errorf("g=1 buffer factor = %v", f1)
	}
	if one.GroupSlot != one.Cycle {
		t.Errorf("g=1 slot = %v, want full cycle", one.GroupSlot)
	}
	if _, err := PlanGSS(load, FutureDisk(), 0); err == nil {
		t.Error("g=0 accepted")
	}
}

func TestOptimalGSSPlan(t *testing.T) {
	load := Load{Streams: 500, BitRate: 1e5}
	best, err := OptimalGSSPlan(load, FutureDisk())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{1, load.Streams} {
		p, err := PlanGSS(load, FutureDisk(), g)
		if err != nil {
			t.Fatal(err)
		}
		if best.TotalDRAMBytes > p.TotalDRAMBytes {
			t.Errorf("optimal (g=%d) worse than g=%d", best.Groups, g)
		}
	}
}

func TestPlanHybridBank(t *testing.T) {
	// Skewed popularity: caching should dominate the split.
	split, err := PlanHybridBank(4, FutureDisk(), G3MEMS(), 1e4, 1e12, 1, 99, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if split.Streams <= 0 {
		t.Fatal("no streams")
	}
	if split.CacheBytes < split.BufferBytes {
		t.Errorf("1:99 split cache=%.0fGB buffer=%.0fGB, want cache-heavy",
			split.CacheBytes/1e9, split.BufferBytes/1e9)
	}
	// Uniform popularity: buffering should dominate.
	split, err = PlanHybridBank(4, FutureDisk(), G3MEMS(), 1e4, 1e12, 50, 50, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if split.BufferBytes < split.CacheBytes {
		t.Errorf("50:50 split cache=%.0fGB buffer=%.0fGB, want buffer-heavy",
			split.CacheBytes/1e9, split.BufferBytes/1e9)
	}
	if _, err := PlanHybridBank(0, FutureDisk(), G3MEMS(), 1e4, 1e12, 10, 90, 1e9); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMixedLoad(t *testing.T) {
	// 100 DVD + 900 DivX streams: B̄ = (100·1e6 + 900·1e5)/1000 = 190KB/s.
	load := MixedLoad(
		ClassCount{Streams: 100, BitRate: 1e6},
		ClassCount{Streams: 900, BitRate: 1e5},
	)
	if load.Streams != 1000 {
		t.Errorf("N = %d", load.Streams)
	}
	if math.Abs(load.BitRate-190e3) > 1e-6 {
		t.Errorf("B̄ = %v, want 190KB/s", load.BitRate)
	}
	// Degenerate entries are ignored.
	if l := MixedLoad(ClassCount{Streams: 0, BitRate: 1e6}); l.Streams != 0 {
		t.Errorf("empty mix = %+v", l)
	}
	// A mixed load feeds straight into the planner.
	if _, err := PlanDirect(load, FutureDisk()); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateExtensions(t *testing.T) {
	// Write streams through the public API.
	res, err := Simulate(SimConfig{
		Architecture: BufferedServer,
		Streams:      60,
		Writers:      20,
		BitRate:      1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriterPeakDRAMBytes <= 0 {
		t.Error("no writer backlog recorded")
	}
	if res.Underflows != 0 {
		t.Errorf("underflows = %d", res.Underflows)
	}
	// EDF through the public API.
	edf, err := Simulate(SimConfig{
		Architecture: DirectServer,
		Streams:      30,
		BitRate:      1e6,
		UseEDF:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if edf.Underflows != 0 || edf.DiskIOs == 0 {
		t.Errorf("EDF sim: %+v", edf)
	}
	// VBR through the public API.
	vbr, err := Simulate(SimConfig{
		Architecture: DirectServer,
		Streams:      30,
		BitRate:      1e6,
		VBRCoV:       0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vbr.Underflows != 0 {
		t.Errorf("VBR sim underflows = %d", vbr.Underflows)
	}
}

func TestSimulateHybrid(t *testing.T) {
	res, err := Simulate(SimConfig{
		Architecture: HybridServer,
		Streams:      300,
		BitRate:      1e5,
		MEMSDevices:  4,
		Titles:       400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("hybrid underflows = %d", res.Underflows)
	}
	if res.FromCache == 0 || res.FromDisk == 0 {
		t.Errorf("hybrid split %d/%d", res.FromCache, res.FromDisk)
	}
	if HybridServer.String() != "mems-hybrid" {
		t.Error("architecture name wrong")
	}
}

func TestBlockingHelpers(t *testing.T) {
	b, err := EstimateBlocking(100, 100)
	if err != nil || math.Abs(b-0.0757) > 5e-4 {
		t.Fatalf("EstimateBlocking = %v, %v", b, err)
	}
	n, err := CapacityForBlocking(100, 0.01)
	if err != nil || n < 110 || n > 125 {
		t.Fatalf("CapacityForBlocking = %v, %v", n, err)
	}
	if _, err := EstimateBlocking(-1, 10); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := CapacityForBlocking(10, 2); err == nil {
		t.Error("bad target accepted")
	}
}

func TestSimulateInteractive(t *testing.T) {
	res, err := Simulate(SimConfig{
		Architecture:   DirectServer,
		Streams:        50,
		BitRate:        1e6,
		PausedFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("interactive sim underflows = %d", res.Underflows)
	}
	busy, err := Simulate(SimConfig{
		Architecture: DirectServer, Streams: 50, BitRate: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskIOs >= busy.DiskIOs {
		t.Errorf("no bandwidth reclaimed: %d vs %d IOs", res.DiskIOs, busy.DiskIOs)
	}
}
