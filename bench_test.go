package memstream

// One benchmark per paper artifact: each regenerates the corresponding
// table or figure through the experiment harness, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation and times it. The rendered artifacts
// themselves come from `go run ./cmd/memsbench`.

import (
	"testing"

	"memstream/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Output) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (storage media characteristics).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table 2 (model parameter glossary).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (2007 device characteristics).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig2 regenerates Figure 2 (effective throughput vs IO size).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig4 regenerates Figure 4 (single-device MEMS IO schedule).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (MEMS bank IO schedule, N=45, k=3).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (DRAM requirement sweeps).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7a regenerates Figure 7(a) (cost reduction vs latency ratio).
func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7a") }

// BenchmarkFig7b regenerates Figure 7(b) (cost-reduction contour regions).
func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7b") }

// BenchmarkFig8 regenerates Figure 8 (dollar savings vs stream count).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9a regenerates Figure 9(a) (cache performance at 10KB/s).
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }

// BenchmarkFig9b regenerates Figure 9(b) (cache performance at 1MB/s).
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, "fig9b") }

// BenchmarkFig10 regenerates Figure 10 (throughput vs cache bank size).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkSensitivity regenerates the footnote-2 cost/bandwidth
// sensitivity table.
func BenchmarkSensitivity(b *testing.B) { benchExperiment(b, "sens") }

// BenchmarkValidate runs the model-vs-simulation cross-check (our
// addition): six end-to-end discrete-event server runs.
func BenchmarkValidate(b *testing.B) { benchExperiment(b, "validate") }

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationGSS compares the GSS scheduler trade-off against
// time-cycle scheduling and the MEMS buffer.
func BenchmarkAblationGSS(b *testing.B) { benchExperiment(b, "ablation-gss") }

// BenchmarkAblationEDF compares EDF and time-cycle scheduling in
// simulation.
func BenchmarkAblationEDF(b *testing.B) { benchExperiment(b, "ablation-edf") }

// BenchmarkAblationLayout measures the §7 MEMS placement policies.
func BenchmarkAblationLayout(b *testing.B) { benchExperiment(b, "ablation-layout") }

// BenchmarkPlanDirect times one closed-form Theorem 1 evaluation.
func BenchmarkPlanDirect(b *testing.B) {
	load := Load{Streams: 2000, BitRate: 100e3}
	d := FutureDisk()
	for i := 0; i < b.N; i++ {
		if _, err := PlanDirect(load, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanMEMSBuffer times one Theorem 2 evaluation including the
// cycle-ratio quantization.
func BenchmarkPlanMEMSBuffer(b *testing.B) {
	load := Load{Streams: 2000, BitRate: 100e3}
	d, m := FutureDisk(), G3MEMS()
	for i := 0; i < b.N; i++ {
		if _, err := PlanMEMSBuffer(load, d, m, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxStreamsSearch times the binary search used throughout the
// Figure 9/10 sweeps.
func BenchmarkMaxStreamsSearch(b *testing.B) {
	d := FutureDisk()
	for i := 0; i < b.N; i++ {
		if n := MaxStreams(100e3, d, 5e9); n == 0 {
			b.Fatal("no streams")
		}
	}
}

// BenchmarkSimulateDirect times a full discrete-event run of the baseline
// architecture (50 streams, 10 IO cycles).
func BenchmarkSimulateDirect(b *testing.B) {
	cfg := SimConfig{Architecture: DirectServer, Streams: 50, BitRate: 1e6}
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Underflows != 0 {
			b.Fatal("underflow")
		}
	}
}

// BenchmarkSimulateBuffered times a full discrete-event run of the
// MEMS-buffered pipeline.
func BenchmarkSimulateBuffered(b *testing.B) {
	cfg := SimConfig{Architecture: BufferedServer, Streams: 200, BitRate: 1e5}
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Underflows != 0 {
			b.Fatal("underflow")
		}
	}
}

// BenchmarkSimulateCachedStriped and ...Replicated time the two
// cache-management policies end to end — the ablation behind Figure 9's
// policy comparison.
func BenchmarkSimulateCachedStriped(b *testing.B) {
	benchCached(b, Striped)
}

func BenchmarkSimulateCachedReplicated(b *testing.B) {
	benchCached(b, Replicated)
}

func benchCached(b *testing.B, policy CachePolicy) {
	b.Helper()
	cfg := SimConfig{
		Architecture: CachedServer, Streams: 200, BitRate: 1e5,
		Titles: 400, CachePolicy: policy,
	}
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FromCache == 0 {
			b.Fatal("cache unused")
		}
	}
}

// BenchmarkDynamics runs the session-dynamics (Erlang blocking) study.
func BenchmarkDynamics(b *testing.B) { benchExperiment(b, "dynamics") }

// BenchmarkBestEffort runs the MEMS-vs-disk best-effort response-time
// comparison from the related-work discussion.
func BenchmarkBestEffort(b *testing.B) { benchExperiment(b, "besteffort") }

// BenchmarkAblationRouting runs the §3.1.2 bank-routing comparison.
func BenchmarkAblationRouting(b *testing.B) { benchExperiment(b, "ablation-routing") }

// BenchmarkArray prices disk-array scaling against the MEMS bank.
func BenchmarkArray(b *testing.B) { benchExperiment(b, "array") }

// BenchmarkFig9Zipf runs the Zipf-popularity robustness check.
func BenchmarkFig9Zipf(b *testing.B) { benchExperiment(b, "fig9-zipf") }

// BenchmarkGenerations sweeps the G1-G3 device generations.
func BenchmarkGenerations(b *testing.B) { benchExperiment(b, "generations") }

// BenchmarkYear2002 evaluates the 2002 motivating baseline.
func BenchmarkYear2002(b *testing.B) { benchExperiment(b, "year2002") }

// BenchmarkHybrid simulates the §7 buffer+cache bank splits.
func BenchmarkHybrid(b *testing.B) { benchExperiment(b, "hybrid") }

// BenchmarkAblationDevCache measures the on-device cache across workload
// classes.
func BenchmarkAblationDevCache(b *testing.B) { benchExperiment(b, "ablation-devcache") }
